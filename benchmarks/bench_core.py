"""Micro-benchmark of the simulator cycle loop (the BENCH_core trajectory).

Measures cycles/second of the activity-gated loop and of the ungated
reference loop at low / mid / saturation load on 4x4 and 8x8 meshes
(mixed traffic, the Fig. 5 operating regime), plus two instrumented
fig5 mid points: an O1TURN-routed one whose ``vs_xy_mid`` ratio (gated
o1turn / gated xy, same process, same budgets) pins the cost of the
routing-strategy indirection, and an on-off-injected one whose
``vs_bernoulli_mid`` ratio pins the cost of the injection-process
indirection (the per-cycle ``ChainState.pulse`` dispatch plus the
private chain stream, riding the same hot path), and a fully observed
one (tracer + sampler + profiler attached) whose ``vs_plain_mid``
ratio pins the probes-ON cost of the observability layer; results go
to ``BENCH_core.json`` so the speedup trajectory is pinned across PRs.

The array-backend points add the representation-change payoff
(``vs_object_mid``, array kernel vs object oracle at mid load on
4x4/8x8/16x16), the batched multi-seed payoff (``vs_serial_seeds``,
one ``seeds=[...]`` batch of 8 replicas vs 8 serial single-seed array
runs on the 8x8 fig5 mid point — the batch axis must amortise the
kernel's fixed per-cycle costs at least 4x), and a gate-free 32x32
absolute-throughput exhibit (the object oracle is too slow to
interleave at that radix).
``--probe-gate`` separately enforces the zero-overhead-*off* half of
the observability contract (DESIGN.md §7): attach/detach must leave no
structural or timing residue on the hot loop.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py                  # measure, print
    PYTHONPATH=src python benchmarks/bench_core.py --output BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core.py \
        --check benchmarks/BENCH_core.json --tolerance 0.30         # CI smoke

``--check`` compares the *speedup ratios* (gated vs reference, both
measured in the same process on the same machine) against the committed
baseline, which makes the regression gate robust to runner speed;
absolute cycles/sec are recorded for human trend-reading only.  In
check mode the cycle budgets are taken from the baseline's
``cycles_timed`` so the comparison is apples-to-apples (``--quick`` is
ignored), and the check fails if any baseline point went unmeasured.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.harness.sweep import default_rates
from repro.noc.config import NocConfig
from repro.noc.routing import make_routing
from repro.noc.simulator import Simulator
from repro.traffic.generators import SyntheticTraffic
from repro.traffic.mix import MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.processes import OnOffProcess

#: cycle budgets of the array-backend points (the object side bounds
#: the wall time: at 16x16 mid-load it runs ~50 cycles/s); 32x32 is
#: array-only (no object interleave), so its budget only bounds the
#: kernel itself
ARRAY_BUDGETS = {4: 2_000, 8: 800, 16: 300, 32: 150}
ARRAY_BUDGETS_QUICK = {4: 800, 8: 300, 16: 120, 32: 60}
ARRAY_WARMUP = {4: 300, 8: 200, 16: 100, 32: 80}

#: the batched multi-seed point: replicas per batch and their seed
#: schedule (the replica stride of repro.analysis.replicas, so the
#: benchmark times exactly what ``--seeds 8`` runs)
BATCH_REPLICAS = 8
BATCH_SEEDS = [7 + 100_003 * i for i in range(BATCH_REPLICAS)]
BATCH_BUDGET = 1_500
BATCH_BUDGET_QUICK = 600

#: Fig. 5 operating points for the 4x4 chip; low/mid/saturation for
#: larger meshes are derived from the mix's theoretical rate grid.
FIG5_RATES = {"low": 0.02, "mid": 0.14, "saturation": 0.21}

#: Perf-trajectory anchors: cycles/sec of the *pre-gating* cycle loop
#: (PR 1, commit 1a1a3b7), measured on the same machine and with the
#: same cycle budgets as the committed BENCH_core.json baseline.  The
#: derived ``speedup_vs_pr1_loop`` is only meaningful when the current
#: run executes on comparable hardware; the CI regression gate uses the
#: in-process gated/reference ratio instead, which is machine-robust.
PR1_LOOP_CYCLES_PER_SEC = {
    ("4x4", "low"): 2522.3,
    ("4x4", "mid"): 1433.3,
    ("4x4", "saturation"): 1003.8,
    ("8x8", "low"): 473.0,
    ("8x8", "mid"): 269.9,
    ("8x8", "saturation"): 228.0,
}


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def load_points(k):
    if k == 4:
        return FIG5_RATES
    grid = default_rates(MIXED_TRAFFIC, k * k, points=8)
    return {"low": grid[0], "mid": grid[3], "saturation": grid[7]}


def time_loop(k, rate, cycles, warmup, gated, routing=None, process=None,
              observed=False, mix=MIXED_TRAFFIC, backend="object"):
    cfg = NocConfig(k=k) if routing is None else NocConfig(
        k=k, routing=make_routing(routing)
    )
    traffic = SyntheticTraffic(mix, rate, seed=7, process=process)
    sim = Simulator(cfg, traffic, gated=gated, backend=backend)
    if observed:
        from repro.obs import Observer

        Observer(trace=True, sample=64, profile=True).attach(sim)
    sim.run(warmup)
    start = time.perf_counter()
    sim.run(cycles)
    elapsed = time.perf_counter() - start
    return cycles / elapsed


def _seeds_sim(k, rate, seeds=None):
    traffic = SyntheticTraffic(UNIFORM_UNICAST, rate, seed=7)
    return Simulator(NocConfig(k=k), traffic, backend="array", seeds=seeds)


def time_seeds_serial(k, rate, cycles, warmup):
    """Aggregate cycles/sec of ``BATCH_REPLICAS`` single-seed array
    runs, one after another (construction and warmup excluded from the
    timed span, like :func:`time_loop`)."""
    total = 0.0
    for seed in BATCH_SEEDS:
        traffic = SyntheticTraffic(UNIFORM_UNICAST, rate, seed=seed)
        sim = Simulator(NocConfig(k=k), traffic, backend="array")
        sim.run(warmup)
        start = time.perf_counter()
        sim.run(cycles)
        total += time.perf_counter() - start
    return BATCH_REPLICAS * cycles / total


def time_seeds_batch(k, rate, cycles, warmup):
    """Aggregate cycles/sec of one ``seeds=[...]`` batched array run:
    every timed cycle advances all ``BATCH_REPLICAS`` lanes."""
    sim = _seeds_sim(k, rate, seeds=BATCH_SEEDS)
    sim.run(warmup)
    start = time.perf_counter()
    sim.run(cycles)
    return BATCH_REPLICAS * cycles / (time.perf_counter() - start)


def measure(quick=False, budgets=None, repeats=2):
    """Time all points; ``budgets`` maps (mesh, load) to cycle counts
    (used in check mode to replay the baseline's exact budgets).
    Each timing is the best of ``repeats`` runs: the loop is
    deterministic, so the fastest run is the least-perturbed one and
    best-of-N keeps a noisy neighbour from tripping (or silently
    re-pinning) the ratio gates.  The two sides of every recorded
    ratio are timed *interleaved* (gated, reference, gated, ...), so
    load drift on the runner hits both equally and the ratio of the
    two best-of-N floors survives a machine whose absolute speed moves
    between points."""

    def interleaved(*args, variants, **kwargs):
        """Best-of-``repeats`` for each variant (a list of kwarg
        dicts), alternating between them run by run."""
        runs = [[] for _ in variants]
        for _ in range(repeats):
            for out, extra in zip(runs, variants):
                out.append(time_loop(*args, **kwargs, **extra))
        return [max(out) for out in runs]

    points = []
    for k in (4, 8):
        default = (1_500 if quick else 4_000) if k == 4 else (600 if quick else 1_500)
        warmup = 300 if k == 4 else 200
        for load, rate in load_points(k).items():
            budget = default
            if budgets:
                budget = budgets.get((f"{k}x{k}", load), default)
            gated, reference = interleaved(
                k, rate, budget, warmup,
                variants=[{"gated": True}, {"gated": False}],
            )
            point = {
                "mesh": f"{k}x{k}",
                "load": load,
                "rate": round(rate, 6),
                "cycles_timed": budget,
                "gated_cycles_per_sec": round(gated, 1),
                "reference_cycles_per_sec": round(reference, 1),
                "speedup": round(gated / reference, 3),
            }
            anchor = PR1_LOOP_CYCLES_PER_SEC.get((f"{k}x{k}", load))
            if anchor:
                point["pr1_loop_cycles_per_sec"] = anchor
                point["speedup_vs_pr1_loop"] = round(gated / anchor, 3)
            points.append(point)
            print(
                f"{k}x{k} {load:10s} rate={rate:.4f}  "
                f"gated={gated:10,.0f} c/s  reference={reference:10,.0f} c/s  "
                f"speedup={gated / reference:.2f}x",
                file=sys.stderr,
            )
        if k == 4:
            # instrumented fig5 mid points: each re-times the mid load
            # with one extra layer engaged and pins its cost as a
            # gated/gated ratio against the plain mid point:
            #
            # * ``vs_xy_mid`` prices the routing-strategy indirection
            #   (header state, per-phase VC queues, the RouteState
            #   memo ride the identical hot path);
            # * ``vs_bernoulli_mid`` prices the injection-process
            #   indirection (the per-cycle ChainState.pulse dispatch
            #   plus the private chain stream);
            # * ``vs_plain_mid`` prices the observability layer with
            #   every probe live (worst case).
            #
            # The ratio's two sides are timed *interleaved* (variant,
            # plain, variant, plain, ...) so load drift on the runner
            # hits both equally and the ratio of the two best-of-N
            # floors isolates the layer's real cost; a drop of the
            # ratio is a regression in that layer, not runner noise.
            def instrumented(load, ratio_key, **kwargs):
                rate = load_points(4)["mid"]
                budget = default
                if budgets:
                    budget = budgets.get(("4x4", load), default)
                gated, reference, plain = interleaved(
                    4, rate, budget, warmup,
                    variants=[
                        {"gated": True, **kwargs},
                        {"gated": False, **kwargs},
                        {"gated": True},
                    ],
                )
                ratio = gated / plain
                points.append(
                    {
                        "mesh": "4x4",
                        "load": load,
                        "rate": round(rate, 6),
                        "cycles_timed": budget,
                        "gated_cycles_per_sec": round(gated, 1),
                        "reference_cycles_per_sec": round(reference, 1),
                        "speedup": round(gated / reference, 3),
                        ratio_key: round(ratio, 3),
                    }
                )
                print(
                    f"4x4 {load:10s} rate={rate:.4f}  "
                    f"gated={gated:10,.0f} c/s  "
                    f"reference={reference:10,.0f} c/s  "
                    f"speedup={gated / reference:.2f}x  "
                    f"{ratio_key}={ratio:.2f}x",
                    file=sys.stderr,
                )

            instrumented("mid-o1turn", "vs_xy_mid", routing="o1turn")
            instrumented(
                "mid-onoff",
                "vs_bernoulli_mid",
                process=OnOffProcess(burst_length=8.0),
            )
            # ``vs_plain_mid`` prices the observability layer with the
            # probes ON (tracer + sampler + profiler all attached, the
            # worst case); probes-OFF residue is checked structurally
            # and timed by ``--probe-gate``
            instrumented("mid-traced", "vs_plain_mid", observed=True)
    # array-backend points (DESIGN.md §9): mid-load on 4x4/8x8/16x16,
    # uniform unicast (the array backend rejects broadcast mixes), the
    # same backend interleaved against the gated object oracle.  The
    # ``vs_object_mid`` ratio is the representation-change payoff and
    # is CI-gated like the other ratios; the 16x16 point is the first
    # large-radix scaling exhibit (the object loop runs ~50 cycles/s
    # there, which is why large-mesh sweeps need the array kernel).
    for k in (4, 8, 16):
        mesh = f"{k}x{k}"
        rate = default_rates(UNIFORM_UNICAST, k * k, points=8)[3]
        default = (ARRAY_BUDGETS_QUICK if quick else ARRAY_BUDGETS)[k]
        budget = budgets.get((mesh, "mid-array"), default) if budgets \
            else default
        arr, obj = interleaved(
            k, rate, budget, ARRAY_WARMUP[k],
            variants=[
                {"gated": True, "mix": UNIFORM_UNICAST, "backend": "array"},
                {"gated": True, "mix": UNIFORM_UNICAST},
            ],
        )
        points.append(
            {
                "mesh": mesh,
                "load": "mid-array",
                "rate": round(rate, 6),
                "cycles_timed": budget,
                "array_cycles_per_sec": round(arr, 1),
                "object_cycles_per_sec": round(obj, 1),
                "vs_object_mid": round(arr / obj, 3),
            }
        )
        print(
            f"{mesh} {'mid-array':10s} rate={rate:.4f}  "
            f"array={arr:10,.0f} c/s  object={obj:10,.0f} c/s  "
            f"vs_object_mid={arr / obj:.2f}x",
            file=sys.stderr,
        )
    # the batched multi-seed point (the batch-axis payoff): eight
    # replicas of the fig5 mid point on 8x8, once as eight serial
    # single-seed array runs and once as one ``seeds=[...]`` batch.
    # The lanes share every fixed per-cycle cost (phase dispatch, mask
    # construction, the numpy call overhead), so the aggregate ratio
    # ``vs_serial_seeds`` is the amortisation payoff — CI-gated like
    # the other ratios.  Both sides are best-of-``repeats`` and
    # interleaved (serial, batch, serial, ...) for the usual noise
    # discipline.
    rate = FIG5_RATES["mid"]
    default = BATCH_BUDGET_QUICK if quick else BATCH_BUDGET
    budget = budgets.get(("8x8", "mid-seeds"), default) if budgets \
        else default
    serial_runs, batch_runs = [], []
    for _ in range(repeats):
        serial_runs.append(
            time_seeds_serial(8, rate, budget, ARRAY_WARMUP[8])
        )
        batch_runs.append(time_seeds_batch(8, rate, budget, ARRAY_WARMUP[8]))
    serial, batch = max(serial_runs), max(batch_runs)
    points.append(
        {
            "mesh": "8x8",
            "load": "mid-seeds",
            "rate": round(rate, 6),
            "cycles_timed": budget,
            "batch_replicas": BATCH_REPLICAS,
            "serial_cycles_per_sec": round(serial, 1),
            "batch_cycles_per_sec": round(batch, 1),
            "vs_serial_seeds": round(batch / serial, 3),
        }
    )
    print(
        f"8x8 {'mid-seeds':10s} rate={rate:.4f}  "
        f"serial={serial:10,.0f} c/s  batch={batch:10,.0f} c/s  "
        f"vs_serial_seeds={batch / serial:.2f}x",
        file=sys.stderr,
    )
    # the 32x32 scaling exhibit, array-only: the object oracle runs
    # ~10 cycles/s at this radix, far too slow to interleave, so the
    # point records the kernel's absolute cycles/sec as trajectory
    # data (human trend-reading) with no ratio gate
    k = 32
    mesh = "32x32"
    rate = default_rates(UNIFORM_UNICAST, k * k, points=8)[3]
    default = (ARRAY_BUDGETS_QUICK if quick else ARRAY_BUDGETS)[k]
    budget = budgets.get((mesh, "mid-array"), default) if budgets \
        else default
    arr = max(
        time_loop(
            k, rate, budget, ARRAY_WARMUP[k], gated=True,
            mix=UNIFORM_UNICAST, backend="array",
        )
        for _ in range(repeats)
    )
    points.append(
        {
            "mesh": mesh,
            "load": "mid-array",
            "rate": round(rate, 6),
            "cycles_timed": budget,
            "array_cycles_per_sec": round(arr, 1),
        }
    )
    print(
        f"{mesh} {'mid-array':10s} rate={rate:.4f}  "
        f"array={arr:10,.0f} c/s  (object oracle too slow to interleave)",
        file=sys.stderr,
    )
    return {
        "schema": 1,
        "traffic": MIXED_TRAFFIC.name,
        "python": platform.python_version(),
        "points": points,
    }


def probe_gate(overhead_limit=0.02, repeats=7):
    """The zero-overhead-off contract (DESIGN.md §7), as a CI gate.

    Two halves:

    1. **structural** — attaching an Observer must swap the observed
       step variant in, and detaching must restore the plain stepper
       and clear every probe slot (router, NIC, input VC, channel), so
       an un-observed run executes byte-for-byte the pre-observability
       hot loop;
    2. **timing** — an attach/detach survivor must run the fig5 mid
       point within ``overhead_limit`` of a never-observed simulator
       (interleaved best-of-``repeats`` each; the code paths are
       identical after detach, so anything beyond noise is leaked
       residue).

    Returns the number of failures (0 = gate passed).
    """
    from repro.obs import Observer

    rate = FIG5_RATES["mid"]

    def build():
        traffic = SyntheticTraffic(MIXED_TRAFFIC, rate, seed=7)
        return Simulator(NocConfig(k=4), traffic)

    failures = []

    sim = build()
    plain_step = sim._stepper().__func__
    obs = Observer(trace=True, sample=64, profile=True).attach(sim)
    if sim._stepper().__func__ is plain_step:
        failures.append("attach did not swap in the observed stepper")
    obs.detach()
    if sim._stepper().__func__ is not plain_step:
        failures.append("detach left an observed stepper installed")
    net = sim.network
    residue = (
        [r for r in net.routers if r.probe is not None]
        + [nic for nic in net.nics if nic.probe is not None]
        + [
            vc
            for r in net.routers
            for ip in r.in_ports
            for vc in ip.vcs
            if vc.probe is not None
        ]
        + [ch for _key, ch in net.flit_links() if ch.probe is not None]
    )
    if residue:
        failures.append(f"{len(residue)} probe slot(s) survived detach")

    # the array backend has no probe slots at all (support matrix,
    # DESIGN.md §9): attach must refuse loudly rather than silently
    # observe nothing, and the refusal must leave the simulator
    # untouched (no partial wiring)
    arr = Simulator(
        NocConfig(k=4),
        SyntheticTraffic(UNIFORM_UNICAST, rate, seed=7),
        backend="array",
    )
    try:
        Observer(trace=True).attach(arr)
    except ValueError:
        if getattr(arr, "obs", None) is not None:
            failures.append("rejected attach left obs set on array backend")
    else:
        failures.append("Observer.attach accepted the array backend")

    def timed(sim):
        sim.run(300)
        start = time.perf_counter()
        sim.run(2_000)
        return 2_000 / (time.perf_counter() - start)

    def detached():
        sim = build()
        Observer(trace=True, sample=64, profile=True).attach(sim).detach()
        return sim

    # Interleave the two variants so load drift on the runner hits
    # both equally.  Contention noise only ever *slows* a run, so the
    # most favorable estimate across the adjacent pairs (and across
    # the two noise floors) approaches the true ratio from below; a
    # real residue depresses every estimate and cannot hide behind a
    # single quiet scheduling window.
    fresh_runs, survivor_runs = [], []
    for _ in range(repeats):
        fresh_runs.append(timed(build()))
        survivor_runs.append(timed(detached()))
    fresh = max(fresh_runs)
    survivor = max(survivor_runs)
    estimates = [s / f for f, s in zip(fresh_runs, survivor_runs)]
    estimates.append(survivor / fresh)
    overhead = max(0.0, 1.0 - max(estimates))
    verdict = "ok" if overhead <= overhead_limit else "REGRESSED"
    print(
        f"probe gate: fresh={fresh:10,.0f} c/s  "
        f"attach/detach survivor={survivor:10,.0f} c/s  "
        f"residue={overhead:.1%} (limit {overhead_limit:.0%}) {verdict}",
        file=sys.stderr,
    )
    if overhead > overhead_limit:
        failures.append(f"probes-off overhead {overhead:+.1%}")
    for failure in failures:
        print(f"probe gate: {failure}", file=sys.stderr)
    return len(failures)


def fault_gate(overhead_limit=0.02, repeats=7):
    """The fault layer's zero-overhead-off contract (DESIGN.md §8).

    Two halves, mirroring :func:`probe_gate`:

    1. **structural** — a simulator without a fault model must run the
       pristine pre-fault stepper (no wrapper, no inline ``faults``
       test in the hot loop), and attaching a model must gate purely
       by swapping the stepper, leaving the step functions untouched;
    2. **timing** — a zero-rate fault engine (the knob present but in
       its off position) must run the fig5 mid point within
       ``overhead_limit`` of a never-faulted simulator; its per-cycle
       pre-phase early-outs on every sub-phase, so anything beyond the
       wrapper call is leaked work.

    Returns the number of failures (0 = gate passed).
    """
    from repro.noc.faults import BitErrorFaults

    rate = FIG5_RATES["mid"]

    def build(faults=None):
        traffic = SyntheticTraffic(MIXED_TRAFFIC, rate, seed=7)
        sim = Simulator(NocConfig(k=4), traffic)
        if faults is not None:
            sim.attach_faults(faults, seed=7)
        return sim

    failures = []

    plain = build()
    if plain.faults is not None:
        failures.append("a default simulator carries a fault engine")
    if plain._stepper().__func__ is not Simulator._step_gated:
        failures.append("faults-off stepper is not the plain hot loop")
    armed = build(BitErrorFaults(rate=0.0))
    if getattr(armed._stepper(), "__func__", None) is Simulator._step_gated:
        failures.append("attach_faults left the plain stepper installed")

    def timed(sim):
        sim.run(300)
        start = time.perf_counter()
        sim.run(2_000)
        return 2_000 / (time.perf_counter() - start)

    # same noise discipline as probe_gate: interleaved runs, and the
    # most favorable of the per-pair and best-of-N estimates — real
    # leaked work depresses every estimate, noise only some
    plain_runs, armed_runs = [], []
    for _ in range(repeats):
        plain_runs.append(timed(build()))
        armed_runs.append(timed(build(BitErrorFaults(rate=0.0))))
    estimates = [a / p for p, a in zip(plain_runs, armed_runs)]
    estimates.append(max(armed_runs) / max(plain_runs))
    overhead = max(0.0, 1.0 - max(estimates))
    verdict = "ok" if overhead <= overhead_limit else "REGRESSED"
    print(
        f"fault gate: plain={max(plain_runs):10,.0f} c/s  "
        f"zero-rate engine={max(armed_runs):10,.0f} c/s  "
        f"residue={overhead:.1%} (limit {overhead_limit:.0%}) {verdict}",
        file=sys.stderr,
    )
    if overhead > overhead_limit:
        failures.append(f"faults-off overhead {overhead:+.1%}")
    for failure in failures:
        print(f"fault gate: {failure}", file=sys.stderr)
    return len(failures)


def check(result, baseline, tolerance):
    """Fail (return nonzero) if any point's gated/reference speedup —
    or any recorded layer/backend ratio (``vs_xy_mid``,
    ``vs_bernoulli_mid``, ``vs_plain_mid``, ``vs_object_mid``,
    ``vs_serial_seeds``) — regressed, or any baseline point went
    unmeasured (a silently-vacuous gate is worse than a failing
    one)."""
    expected = {(p["mesh"], p["load"]): p for p in baseline["points"]}
    failures = []
    covered = set()
    for p in result["points"]:
        key = (p["mesh"], p["load"])
        if key not in expected:
            continue
        covered.add(key)
        for metric in (
            "speedup", "vs_xy_mid", "vs_bernoulli_mid", "vs_plain_mid",
            "vs_object_mid", "vs_serial_seeds",
        ):
            want = expected[key].get(metric)
            if want is None:
                continue
            if metric not in p:
                # a baseline metric the new run no longer emits would
                # silently disable its gate; treat it as a failure
                print(
                    f"{key[0]} {key[1]:10s} {metric} missing from the "
                    f"measurement", file=sys.stderr,
                )
                failures.append((*key, metric))
                continue
            floor = want * (1.0 - tolerance)
            verdict = "ok" if p[metric] >= floor else "REGRESSED"
            print(
                f"{key[0]} {key[1]:10s} {metric} {p[metric]:.2f}x "
                f"(baseline {want:.2f}x, floor {floor:.2f}x) {verdict}",
                file=sys.stderr,
            )
            if p[metric] < floor:
                failures.append((*key, metric))
    missing = sorted(set(expected) - covered)
    if missing:
        print(f"baseline points not measured: {missing}", file=sys.stderr)
        return 1
    if failures:
        print(f"perf regression at {failures}", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write the measurement JSON here")
    parser.add_argument(
        "--quick", action="store_true", help="reduced cycle budgets (CI smoke)"
    )
    parser.add_argument(
        "--check", metavar="BASELINE", help="compare speedups against this JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression vs the baseline",
    )
    parser.add_argument(
        "--repeats",
        type=_positive_int,
        default=2,
        help="timings per point; the best is kept (noise robustness)",
    )
    parser.add_argument(
        "--probe-gate",
        action="store_true",
        help="only run the zero-overhead-off probe gate (structural "
        "attach/detach residue check plus a probes-off timing gate)",
    )
    parser.add_argument(
        "--fault-gate",
        action="store_true",
        help="only run the fault layer's zero-overhead-off gate "
        "(structural faults-off stepper check plus a timing gate "
        "against a zero-rate fault engine)",
    )
    args = parser.parse_args(argv)

    if args.probe_gate:
        return 1 if probe_gate() else 0
    if args.fault_gate:
        return 1 if fault_gate() else 0

    baseline = budgets = None
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        budgets = {
            (p["mesh"], p["load"]): p["cycles_timed"] for p in baseline["points"]
        }
    result = measure(quick=args.quick, budgets=budgets, repeats=args.repeats)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=1, sort_keys=True)
            fh.write("\n")
    else:
        json.dump(result, sys.stdout, indent=1, sort_keys=True)
        print()
    if baseline is not None:
        return check(result, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
