"""Micro-benchmark of the simulator cycle loop (the BENCH_core trajectory).

Measures cycles/second of the activity-gated loop and of the ungated
reference loop at low / mid / saturation load on 4x4 and 8x8 meshes
(mixed traffic, the Fig. 5 operating regime), and writes the results to
``BENCH_core.json`` so the speedup trajectory is pinned across PRs.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py                  # measure, print
    PYTHONPATH=src python benchmarks/bench_core.py --output BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core.py \
        --check benchmarks/BENCH_core.json --tolerance 0.30         # CI smoke

``--check`` compares the *speedup ratios* (gated vs reference, both
measured in the same process on the same machine) against the committed
baseline, which makes the regression gate robust to runner speed;
absolute cycles/sec are recorded for human trend-reading only.  In
check mode the cycle budgets are taken from the baseline's
``cycles_timed`` so the comparison is apples-to-apples (``--quick`` is
ignored), and the check fails if any baseline point went unmeasured.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.harness.sweep import default_rates
from repro.noc.config import NocConfig
from repro.noc.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.mix import MIXED_TRAFFIC

#: Fig. 5 operating points for the 4x4 chip; low/mid/saturation for
#: larger meshes are derived from the mix's theoretical rate grid.
FIG5_RATES = {"low": 0.02, "mid": 0.14, "saturation": 0.21}

#: Perf-trajectory anchors: cycles/sec of the *pre-gating* cycle loop
#: (PR 1, commit 1a1a3b7), measured on the same machine and with the
#: same cycle budgets as the committed BENCH_core.json baseline.  The
#: derived ``speedup_vs_pr1_loop`` is only meaningful when the current
#: run executes on comparable hardware; the CI regression gate uses the
#: in-process gated/reference ratio instead, which is machine-robust.
PR1_LOOP_CYCLES_PER_SEC = {
    ("4x4", "low"): 2522.3,
    ("4x4", "mid"): 1433.3,
    ("4x4", "saturation"): 1003.8,
    ("8x8", "low"): 473.0,
    ("8x8", "mid"): 269.9,
    ("8x8", "saturation"): 228.0,
}


def load_points(k):
    if k == 4:
        return FIG5_RATES
    grid = default_rates(MIXED_TRAFFIC, k * k, points=8)
    return {"low": grid[0], "mid": grid[3], "saturation": grid[7]}


def time_loop(k, rate, cycles, warmup, gated):
    cfg = NocConfig(k=k)
    traffic = BernoulliTraffic(MIXED_TRAFFIC, rate, seed=7)
    sim = Simulator(cfg, traffic, gated=gated)
    sim.run(warmup)
    start = time.perf_counter()
    sim.run(cycles)
    elapsed = time.perf_counter() - start
    return cycles / elapsed


def measure(quick=False, budgets=None):
    """Time all points; ``budgets`` maps (mesh, load) to cycle counts
    (used in check mode to replay the baseline's exact budgets)."""
    points = []
    for k in (4, 8):
        default = (1_500 if quick else 4_000) if k == 4 else (600 if quick else 1_500)
        warmup = 300 if k == 4 else 200
        for load, rate in load_points(k).items():
            budget = default
            if budgets:
                budget = budgets.get((f"{k}x{k}", load), default)
            gated = time_loop(k, rate, budget, warmup, gated=True)
            reference = time_loop(k, rate, budget, warmup, gated=False)
            point = {
                "mesh": f"{k}x{k}",
                "load": load,
                "rate": round(rate, 6),
                "cycles_timed": budget,
                "gated_cycles_per_sec": round(gated, 1),
                "reference_cycles_per_sec": round(reference, 1),
                "speedup": round(gated / reference, 3),
            }
            anchor = PR1_LOOP_CYCLES_PER_SEC.get((f"{k}x{k}", load))
            if anchor:
                point["pr1_loop_cycles_per_sec"] = anchor
                point["speedup_vs_pr1_loop"] = round(gated / anchor, 3)
            points.append(point)
            print(
                f"{k}x{k} {load:10s} rate={rate:.4f}  "
                f"gated={gated:10,.0f} c/s  reference={reference:10,.0f} c/s  "
                f"speedup={gated / reference:.2f}x",
                file=sys.stderr,
            )
    return {
        "schema": 1,
        "traffic": MIXED_TRAFFIC.name,
        "python": platform.python_version(),
        "points": points,
    }


def check(result, baseline, tolerance):
    """Fail (return nonzero) if any point's speedup regressed or any
    baseline point went unmeasured (a silently-vacuous gate is worse
    than a failing one)."""
    expected = {(p["mesh"], p["load"]): p["speedup"] for p in baseline["points"]}
    failures = []
    covered = set()
    for p in result["points"]:
        key = (p["mesh"], p["load"])
        if key not in expected:
            continue
        covered.add(key)
        floor = expected[key] * (1.0 - tolerance)
        verdict = "ok" if p["speedup"] >= floor else "REGRESSED"
        print(
            f"{key[0]} {key[1]:10s} speedup {p['speedup']:.2f}x "
            f"(baseline {expected[key]:.2f}x, floor {floor:.2f}x) {verdict}",
            file=sys.stderr,
        )
        if p["speedup"] < floor:
            failures.append(key)
    missing = sorted(set(expected) - covered)
    if missing:
        print(f"baseline points not measured: {missing}", file=sys.stderr)
        return 1
    if failures:
        print(f"perf regression at {failures}", file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", help="write the measurement JSON here")
    parser.add_argument(
        "--quick", action="store_true", help="reduced cycle budgets (CI smoke)"
    )
    parser.add_argument(
        "--check", metavar="BASELINE", help="compare speedups against this JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)

    baseline = budgets = None
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        budgets = {
            (p["mesh"], p["load"]): p["cycles_timed"] for p in baseline["points"]
        }
    result = measure(quick=args.quick, budgets=budgets)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=1, sort_keys=True)
            fh.write("\n")
    else:
        json.dump(result, sys.stdout, indent=1, sort_keys=True)
        print()
    if baseline is not None:
        return check(result, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
