"""Shared benchmark helpers.

Every benchmark regenerates one table or figure of the paper via
:mod:`repro.harness.experiments` and prints it, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section.  Simulation-backed exhibits
run once per benchmark (pedantic mode): they are experiments, not
microbenchmarks, and their wall time *is* the figure of merit.
"""


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
