"""Fig. 11: tri-state RSD crossbar dynamic power vs multicast count."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_fig11_multicast_power(benchmark):
    rows = run_once(benchmark, exp.fig11_multicast_power, data_rate_gbps=5.0)
    powers = [r["power_uw"] for r in rows]
    # energy-proportional multicast: linear growth in fanout
    increments = [b - a for a, b in zip(powers, powers[1:])]
    for inc in increments:
        assert inc == pytest.approx(increments[0], rel=1e-9)
    # a 5-way broadcast is far cheaper than 5 separate unicasts
    assert powers[4] < 5 * powers[0]
    # the shared input-wire intercept is positive
    assert powers[0] > increments[0]
    print()
    print(
        format_table(
            ["multicast count", "dynamic power uW @5Gb/s"],
            [[r["fanout"], r["power_uw"]] for r in rows],
            title="Fig. 11: 1b 5x5 RSD crossbar + 1mm links, power vs fanout",
        )
    )
