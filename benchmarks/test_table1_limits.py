"""Table 1 (and Fig. 9): theoretical limits of a k x k mesh."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_table1_limits(benchmark):
    rows = run_once(benchmark, exp.table1_limits, ks=(2, 4, 8, 16))
    k4 = next(r for r in rows if r["k"] == 4)
    # the paper's 4x4 numbers
    assert k4["unicast_hops"] == pytest.approx(10 / 3)
    assert k4["broadcast_hops"] == 5.5
    assert k4["broadcast_ejection_load"] == 16.0
    assert k4["unicast_max_rate"] == 1.0
    assert k4["broadcast_max_rate"] == pytest.approx(1 / 16)
    # broadcast energy limit grows quadratically with node count
    e = {r["k"]: r["broadcast_energy_xbar_link"] for r in rows}
    assert e[8] / e[4] == pytest.approx(4.0, rel=0.05)
    print()
    print(
        format_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Table 1: theoretical mesh limits (per unit R, Exbar=Elink=1)",
        )
    )
