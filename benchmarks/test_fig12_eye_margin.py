"""Fig. 12: repeated vs directly-transmitted low-swing 2mm links."""

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_fig12_eye_margin(benchmark):
    out = run_once(benchmark, exp.fig12_eye_margin, runs=1000)
    repeated, direct = out["repeated"], out["direct"]
    # paper: the repeated link has the larger noise margin...
    assert repeated["mean_eye_mv"] > direct["mean_eye_mv"]
    assert repeated["worst_eye_mv"] >= direct["worst_eye_mv"]
    # ...but takes an additional cycle and more energy (paper: +28%)
    assert repeated["cycles"] == direct["cycles"] + 1
    assert 0.15 < out["energy_overhead"] < 0.55
    print()
    print(
        format_table(
            ["config", "mean eye mV", "worst eye mV", "cycles", "energy fJ/b"],
            [
                ["1mm-repeated", repeated["mean_eye_mv"],
                 repeated["worst_eye_mv"], repeated["cycles"],
                 repeated["energy_fj"]],
                ["2mm-direct", direct["mean_eye_mv"], direct["worst_eye_mv"],
                 direct["cycles"], direct["energy_fj"]],
            ],
            title=(
                "Fig. 12: 2.5Gb/s eye under wire-R variation "
                f"(repeated +{100 * out['energy_overhead']:.0f}% energy, "
                "paper +28%)"
            ),
        )
    )
