"""Engine benchmark: process-pool fan-out of the Fig. 5 sweep.

Runs the proposed-network half of the Fig. 5 mixed-traffic sweep twice
— once on the serial backend, once on the ``multiprocessing`` pool —
checks the results are identical, and reports the speedup.  On a
multi-core host the pool must beat serial; on a single core it only
has to stay within overhead bounds (sweep points are independent, so
the fan-out is embarrassingly parallel and scales with cores).
"""

import os
import time

from repro.core.presets import proposed_network
from repro.engine import Executor
from repro.harness.sweep import run_sweep
from repro.traffic.mix import MIXED_TRAFFIC

RATES = [0.02, 0.06, 0.10, 0.13]
WINDOW = dict(warmup=400, measure=2_000, drain=2_000)


def test_engine_process_pool_matches_serial_and_scales(benchmark):
    cfg = proposed_network()

    t0 = time.perf_counter()
    serial = run_sweep(cfg, MIXED_TRAFFIC, RATES, name="proposed", **WINDOW)
    t_serial = time.perf_counter() - t0

    cores = os.cpu_count() or 1
    workers = min(4, max(2, cores))
    pool = Executor(backend="process", workers=workers)
    t0 = time.perf_counter()
    pooled = benchmark.pedantic(
        run_sweep,
        args=(cfg, MIXED_TRAFFIC, RATES),
        kwargs=dict(name="proposed", executor=pool, **WINDOW),
        rounds=1,
        iterations=1,
    )
    t_pool = time.perf_counter() - t0

    assert pool.executed == len(RATES)
    assert [p.to_dict() for p in pooled] == [s.to_dict() for s in serial]

    speedup = t_serial / t_pool
    print(
        f"\nFig. 5 sweep ({len(RATES)} points): serial {t_serial:.2f}s, "
        f"pool({workers} workers on {cores} core(s)) {t_pool:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    if cores >= 4 and not os.environ.get("CI"):
        # plenty of cores on a dedicated box: independent points must
        # actually fan out
        assert speedup > 1.1
    else:
        # few cores, or a shared CI runner where scheduler noise can
        # eat the gain: only demand the pool not collapse under
        # overhead; the printed speedup remains the figure of merit
        assert speedup > 0.5
