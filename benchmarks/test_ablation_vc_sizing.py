"""Ablation: VC provisioning vs the 3-cycle buffer turnaround.

Section 3.3 sizes the request class at 4 one-flit VCs because the
bypassed pipeline's buffer/VC turnaround is 3 cycles.  This ablation
re-runs broadcast traffic with 2/3/4/6 request VCs (same total buffer
budget ceiling) and shows throughput starving below the turnaround
bound and saturating above it — the design rule behind the chip's
buffer budget.
"""

from benchmarks.conftest import run_once
from repro.core.presets import proposed_network
from repro.harness.sweep import run_point
from repro.harness.tables import format_table
from repro.noc.config import VCSpec
from repro.noc.flit import MessageClass
from repro.traffic.mix import BROADCAST_ONLY


def vc_config(request_vcs):
    return tuple(
        [VCSpec(MessageClass.REQUEST, 1)] * request_vcs
        + [VCSpec(MessageClass.RESPONSE, 3)] * 2
    )


def sweep_vc_counts(rate=0.06, measure=3000):
    rows = []
    for n in (2, 3, 4, 6):
        cfg = proposed_network(vcs=vc_config(n))
        stats = run_point(
            cfg, BROADCAST_ONLY, rate, warmup=600, measure=measure, drain=2000,
            name=f"{n}vc",
        )
        rows.append((n, stats.throughput_gbps, stats.avg_latency))
    return rows


def test_ablation_vc_sizing(benchmark):
    rows = run_once(benchmark, sweep_vc_counts)
    thr = {n: t for n, t, _ in rows}
    # 2 VCs < 3-cycle turnaround: the request class starves
    assert thr[2] < thr[4]
    # at/above the turnaround the returns flatten: 6 VCs buy little
    gain_2_to_4 = thr[4] - thr[2]
    gain_4_to_6 = thr[6] - thr[4]
    assert gain_4_to_6 < 0.5 * gain_2_to_4
    print()
    print(
        format_table(
            ["request VCs", "delivered Gb/s", "avg latency"],
            [[n, t, l] for n, t, l in rows],
            title="Ablation: request-class VC count vs the 3-cycle "
            "turnaround (chip: 4 VCs)",
        )
    )
