"""Ablation: which feature buys what (multicast vs bypassing).

Decomposes the proposed design's gains on broadcast traffic across the
four feature combinations: the baseline, bypass alone (no multicast),
multicast alone (the strawman), and both (the fabricated chip).
Multicast is the throughput feature; bypassing is the latency feature;
the chip needs both to approach both limits simultaneously.
"""

from benchmarks.conftest import run_once
from repro.noc.config import NocConfig
from repro.harness.sweep import run_point
from repro.harness.tables import format_table
from repro.traffic.mix import BROADCAST_ONLY

COMBOS = [
    ("baseline", dict(multicast=False, bypass=False)),
    ("bypass only", dict(multicast=False, bypass=True)),
    ("multicast only", dict(multicast=True, bypass=False)),
    ("both (chip)", dict(multicast=True, bypass=True)),
]


def run_matrix(low_rate=0.01, high_rate=0.055, measure=2500):
    rows = []
    for name, flags in COMBOS:
        cfg = NocConfig(**flags)
        low = run_point(cfg, BROADCAST_ONLY, low_rate, warmup=500,
                        measure=measure, drain=2500, name=name)
        high = run_point(cfg, BROADCAST_ONLY, high_rate, warmup=500,
                         measure=measure, drain=1000, name=name)
        rows.append((name, low.avg_latency, high.throughput_gbps))
    return rows


def test_ablation_features(benchmark):
    rows = run_once(benchmark, run_matrix)
    lat = {name: l for name, l, _ in rows}
    thr = {name: t for name, _, t in rows}
    # bypassing is the latency lever...
    assert lat["bypass only"] < lat["baseline"]
    assert lat["both (chip)"] < lat["multicast only"]
    # ...multicast is the broadcast-throughput lever...
    assert thr["multicast only"] > 1.3 * thr["baseline"]
    assert thr["both (chip)"] > 1.3 * thr["bypass only"]
    # ...and the chip's combination wins both axes outright
    assert lat["both (chip)"] == min(lat.values())
    assert thr["both (chip)"] == max(thr.values())
    print()
    print(
        format_table(
            ["features", "low-load latency (cyc)", "saturated Gb/s"],
            [[n, l, t] for n, l, t in rows],
            title="Ablation: broadcast traffic, feature decomposition",
        )
    )
