"""Fig. 5: throughput-latency with mixed traffic at 1 GHz.

Regenerates the latency-vs-injection curves for the proposed and
baseline networks plus the theoretical limits, and checks the paper's
headline shape: ~50% low-load latency reduction, ~2.1x saturation
throughput, most of the theoretical throughput limit attained.
"""

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_series


def test_fig5_mixed_traffic(benchmark):
    result = run_once(
        benchmark,
        exp.fig5_mixed_traffic,
        rates=[0.02, 0.06, 0.10, 0.13, 0.16, 0.19],
        warmup=800,
        measure=4000,
        drain=4000,
    )
    summary = exp.summarize_sweeps(result)

    # paper: 48.7% latency reduction before saturation
    assert summary["low_load_latency_reduction"] > 0.45
    # paper: 2.1x saturation throughput improvement (3x-zero-load rule)
    assert 1.6 < summary["throughput_ratio"] < 2.9
    # paper: 892 Gb/s = 87.1% of the 1024 Gb/s limit at saturation;
    # peak delivery approaches the ejection ceiling
    assert summary["max_delivered_gbps"] > 0.85 * result["throughput_limit_gbps"]
    # latency curves sit above the theoretical limit line everywhere
    for point in result["proposed"]:
        assert point.avg_latency > result["latency_limit_cycles"]

    print()
    series = {
        "proposed": [
            (p.injection_rate, p.avg_latency) for p in result["proposed"]
        ],
        "baseline": [
            (p.injection_rate, p.avg_latency) for p in result["baseline"]
        ],
    }
    print(
        format_series(
            series,
            "R (flits/node/cyc)",
            "latency (cyc)",
            title=(
                "Fig. 5: mixed traffic "
                f"(limit {result['latency_limit_cycles']:.1f} cyc, "
                f"{result['throughput_limit_gbps']:.0f} Gb/s)"
            ),
        )
    )
    thr = {
        "proposed": [
            (p.injection_rate, p.throughput_gbps) for p in result["proposed"]
        ],
        "baseline": [
            (p.injection_rate, p.throughput_gbps) for p in result["baseline"]
        ],
    }
    print(format_series(thr, "R", "Gb/s", title="Fig. 5 delivered throughput"))
    print(
        "summary:",
        {k: round(v, 3) if isinstance(v, float) else v for k, v in summary.items()},
    )
